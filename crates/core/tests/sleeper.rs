//! Integration tests for the adaptive idle subsystem (spin → yield → park):
//! no lost wakeups under a sparse producer, clean teardown around parked
//! workers, and the headline claim — parking collapses the idle-iteration
//! count of workers starved by a long sequential task.

use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use lcws_core::{scope, Counter, IdlePolicy, PoolBuilder, Variant};

/// Burn CPU (not sleep — the worker must look busy to the scheduler) for
/// roughly `d`.
fn busy_for(d: Duration) {
    let t0 = Instant::now();
    while t0.elapsed() < d {
        for _ in 0..1_000 {
            black_box(0u64);
        }
    }
}

/// One producer drips single jobs with gaps long enough for every helper to
/// escalate through spin and yield into a park; each job must still be
/// picked up and executed. A lost wakeup would either hang the run
/// (without the timed-park backstop) or blow the generous deadline.
#[test]
fn no_lost_wakeups_with_sparse_single_job_producer() {
    const ROUNDS: u32 = 150;
    for variant in [Variant::Ws, Variant::Signal, Variant::UsLcws] {
        let pool = PoolBuilder::new(variant).threads(4).build();
        let executed = AtomicU64::new(0);
        let deadline = Instant::now() + Duration::from_secs(60);
        let (_, snap) = pool.run_measured(|| {
            for _ in 0..ROUNDS {
                scope(|s| {
                    s.spawn(|| {
                        executed.fetch_add(1, Ordering::AcqRel);
                        busy_for(Duration::from_micros(50));
                    });
                });
                // Gap: long enough for the three idle helpers to park
                // (spin + yield stages are microseconds; the park timeout
                // is 1ms).
                busy_for(Duration::from_micros(300));
                assert!(
                    Instant::now() < deadline,
                    "{variant}: sparse producer stalled — wakeup lost?"
                );
            }
        });
        assert_eq!(
            executed.load(Ordering::Acquire),
            u64::from(ROUNDS),
            "{variant}: a spawned job was dropped"
        );
        // The run must actually have exercised the park path, or this test
        // guards nothing.
        assert!(
            snap.parks() > 0,
            "{variant}: helpers never parked (ladder misconfigured?)"
        );
    }
}

/// Dropping the pool right after runs that drove workers deep into the
/// parking path must join every helper promptly (run close wakes all
/// sleepers; teardown then goes through the between-runs start condvar).
#[test]
fn teardown_joins_workers_that_were_parked() {
    for variant in Variant::ALL {
        let t0 = Instant::now();
        {
            let pool = PoolBuilder::new(variant).threads(4).build();
            // Starve three helpers for long enough that they are parked at
            // the moment the run closes.
            pool.run(|| busy_for(Duration::from_millis(20)));
        } // Drop: must not hang on a parked worker.
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "{variant}: teardown stalled"
        );
    }
}

/// The acceptance criterion for the sleeper: with a 2-worker pool running
/// one long sequential task, the starved worker's idle iteration count
/// drops by at least 10× versus the spin-only baseline, and it actually
/// parks. The root task *blocks* rather than burns CPU so the idle worker
/// is free to run on any machine size — on a single-core box a spinning
/// root would starve the idler and mask the busy-wait cost being measured.
/// (The numbers behind `results/idle_wakeup.txt` come from this scenario;
/// run with `--nocapture` to see them.)
#[test]
fn adaptive_idle_cuts_idle_iters_10x_on_sequential_task() {
    let measure = |policy: IdlePolicy| {
        let pool = PoolBuilder::new(Variant::Ws)
            .threads(2)
            .idle_policy(policy)
            .build();
        let (_, snap) = pool.run_measured(|| std::thread::sleep(Duration::from_millis(80)));
        snap
    };
    let spin = measure(IdlePolicy::SpinOnly);
    let adaptive = measure(IdlePolicy::Adaptive);
    println!(
        "sequential 80ms, 2 workers: spin-only idle_iters={} | adaptive idle_iters={} parks={} \
         unparks={} spurious={}",
        spin.idle_iters(),
        adaptive.idle_iters(),
        adaptive.parks(),
        adaptive.unparks(),
        adaptive.get(Counter::SpuriousWake),
    );
    assert_eq!(spin.parks(), 0, "spin-only must never park");
    assert!(adaptive.parks() > 0, "adaptive idler never parked");
    assert!(
        spin.idle_iters() >= 10 * adaptive.idle_iters().max(1),
        "idle iterations did not drop 10x: spin-only {} vs adaptive {}",
        spin.idle_iters(),
        adaptive.idle_iters()
    );
}

/// Regression (PR 8 satellite): a join waiter parked on a stolen arm used
/// to be woken by nothing but the 1ms timed-park backstop — an 80ms stolen
/// arm meant ~80 spurious timeout wakes while the joiner polled `done`.
/// Completion now delivers a targeted wake through the job's waiter slot
/// (and registered waiters park with the longer 50ms backstop), so the
/// spurious count collapses: the joiner eats at most a couple of backstop
/// expiries plus scheduling noise, not one per millisecond.
#[test]
fn join_completion_wake_is_targeted_not_polled() {
    let pool = PoolBuilder::new(Variant::Ws).threads(2).build();
    let (_, snap) = pool.run_measured(|| {
        lcws_core::join(
            // Keep the owner busy long enough for the idle helper to steal
            // the 80ms arm, so the owner must *wait* for a thief.
            || busy_for(Duration::from_millis(5)),
            || std::thread::sleep(Duration::from_millis(80)),
        );
    });
    assert!(
        snap.parks() > 0,
        "joiner never parked while awaiting the stolen arm"
    );
    assert!(
        snap.unparks() > 0,
        "no wake was delivered — completion wake not wired?"
    );
    let spurious = snap.get(Counter::SpuriousWake);
    assert!(
        spurious <= 15,
        "join waiter still poll-waking: {spurious} spurious wakes across an \
         80ms stolen arm (the 1ms-backstop regime produced ~80)"
    );
}

/// Regression (this PR's headline bugfix): `JoinHandle::join` from *inside*
/// a pool worker goes through `help_until`, which used to park under the
/// plain 1ms backstop with no targeted completion wake — the task's
/// completer had nowhere to record who was waiting, so a worker joining an
/// 80ms spawned task burned ~80 spurious backstop expiries polling `done`.
/// `TaskState` now carries a waiter slot mirroring `Job::waiter` (PR 8):
/// the joiner registers its index, parks with the lazy 50ms waiter
/// backstop, and `complete` delivers a targeted `wake_worker`. The
/// spurious count across the 70ms wait collapses to scheduling noise.
#[test]
fn worker_side_handle_join_wake_is_targeted_not_polled() {
    // threads(3) ⇒ two serve-mode helpers: one to sleep inside the slow
    // task, one to run the joiner. (With a single helper the two tasks
    // would serialize and the join would never wait at all.)
    let pool = std::sync::Arc::new(PoolBuilder::new(Variant::Ws).threads(3).build());
    pool.serve();
    // Land the slow task on one helper first, so the joiner task cannot be
    // batch-popped by the same helper (which would dodge the park while
    // the *other* helper idles at the short backstop, polluting the
    // spurious count this test pins).
    let slow = pool.spawn(|| {
        std::thread::sleep(Duration::from_millis(80));
        40u64
    });
    std::thread::sleep(Duration::from_millis(10));
    let h = pool.spawn(move || slow.join() + 2);
    assert_eq!(h.join(), 42);
    let snap = pool.shutdown();
    assert!(
        snap.parks() > 0,
        "worker-side joiner never parked while awaiting the spawned task"
    );
    assert!(
        snap.unparks() > 0,
        "no wake was delivered — TaskState completion wake not wired?"
    );
    let spurious = snap.get(Counter::SpuriousWake);
    assert!(
        spurious <= 25,
        "worker-side join still poll-waking: {spurious} spurious wakes across \
         an 80ms spawned task (the untargeted 1ms-backstop regime produced ~80)"
    );
}

/// Parks must not perturb correctness-critical accounting: a run that
/// parks still executes every task exactly once.
#[test]
fn parked_pool_preserves_task_accounting() {
    let pool = PoolBuilder::new(Variant::Signal).threads(3).build();
    for _ in 0..20 {
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        pool.run(|| {
            scope(|s| {
                for h in &hits {
                    s.spawn(move || {
                        h.fetch_add(1, Ordering::AcqRel);
                    });
                }
            });
        });
        // Let helpers park between runs' work bursts.
        busy_for(Duration::from_micros(200));
        assert!(hits.iter().all(|h| h.load(Ordering::Acquire) == 1));
    }
}
