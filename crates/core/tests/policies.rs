//! Integration tests for the composable policy layer: every sound
//! composition must run real fork-join work to the right answer, unsound
//! bundles must be rejected at pool construction, and the two new axes
//! (near-first victims, steal-half batches) must actually engage — the
//! batch axis is pinned by the `steal_batch_tasks > steals_ok` acceptance
//! criterion on a skewed workload.

use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use lcws_core::{
    join, scope, IdlePolicy, Policies, PoolBuilder, PopBottomMode, StealAmount, Variant,
    VictimSelection,
};

/// Deterministic fork-join reduction with enough fan-out to force steals.
fn par_sum(lo: u64, hi: u64) -> u64 {
    if hi - lo <= 32 {
        (lo..hi).sum()
    } else {
        let mid = lo + (hi - lo) / 2;
        let (a, b) = join(|| par_sum(lo, mid), || par_sum(mid, hi));
        a + b
    }
}

/// Burn CPU for roughly `d` (sleeping would free the core and flatten the
/// steal pressure these tests rely on).
fn busy_for(d: Duration) {
    let t0 = Instant::now();
    while t0.elapsed() < d {
        for _ in 0..200 {
            black_box(0u64);
        }
    }
}

/// Every named composition, plus each with the open axes toggled
/// (near-first victims, spin-only idling), plus the sound cross-axis
/// combinations the validator's rules single out.
fn sound_matrix() -> Vec<(String, Variant, Policies)> {
    let mut out = Vec::new();
    for v in Variant::ALL {
        let base = v.policies();
        out.push((v.to_string(), v, base));
        let mut near = base;
        near.victim = VictimSelection::NearFirst;
        out.push((format!("{v}+near-first"), v, near));
        let mut spin = base;
        spin.idle = IdlePolicy::SpinOnly;
        out.push((format!("{v}+spin-only"), v, spin));
    }
    // Batch steals without Expose Half: legal, just less profitable.
    let mut p = Policies::signal();
    p.steal = StealAmount::Half;
    out.push(("signal+steal-half".into(), Variant::Signal, p));
    // Flag exposure over the signal-safe pop: owner-synchronous, so sound.
    let mut p = Policies::uslcws();
    p.pop_bottom = PopBottomMode::SignalSafe;
    out.push(("uslcws+signal-safe-pop".into(), Variant::UsLcws, p));
    // Everything at once on the conservative scheduler.
    let mut p = Policies::signal_conservative();
    p.victim = VictimSelection::NearFirst;
    p.steal = StealAmount::Half;
    out.push((
        "signal-conservative+near-first+steal-half".into(),
        Variant::SignalConservative,
        p,
    ));
    out
}

const SUM_N: u64 = 4_096;

fn expected_sum() -> u64 {
    SUM_N * (SUM_N - 1) / 2
}

/// The matrix smoke: every sound bundle builds a pool and computes a
/// fork-join reduction correctly at a width that forces stealing.
#[test]
fn every_sound_composition_runs_fork_join_correctly() {
    for (label, variant, policies) in sound_matrix() {
        assert_eq!(
            policies.validate(),
            Ok(()),
            "{label}: matrix bundle unsound"
        );
        let pool = PoolBuilder::new(variant)
            .policies(policies)
            .threads(3)
            .build();
        let got = pool.run(|| par_sum(0, SUM_N));
        assert_eq!(got, expected_sum(), "{label}: wrong fork-join result");
    }
}

/// A pool built from a bare variant and one built from that variant's
/// explicit policy bundle must behave identically — same answers, and the
/// same protocol counters firing (signals for signal bundles, zero
/// exposures for ABP).
#[test]
fn explicit_policy_bundle_reproduces_the_variant() {
    for v in Variant::ALL {
        let by_variant = PoolBuilder::new(v).threads(2).build();
        let by_policies = PoolBuilder::new(v)
            .policies(v.policies())
            .threads(2)
            .build();
        let (a, snap_v) = by_variant.run_measured(|| par_sum(0, SUM_N));
        let (b, snap_p) = by_policies.run_measured(|| par_sum(0, SUM_N));
        assert_eq!(
            a, b,
            "{v}: results diverge between variant- and policy-built pools"
        );
        // Protocol counters are timing-dependent, but their *impossibility*
        // is not: a pool that must not run the exposure protocol (ABP) may
        // never record one, whichever way it was built.
        if !v.policies().uses_split_deque() {
            assert_eq!(snap_v.exposures(), 0, "{v}: ABP pool exposed work");
            assert_eq!(
                snap_p.exposures(),
                0,
                "{v}: policy-built ABP pool exposed work"
            );
        }
        if !v.policies().uses_signals() {
            assert_eq!(
                snap_v.signals_sent(),
                0,
                "{v}: signal-free pool sent signals"
            );
            assert_eq!(
                snap_p.signals_sent(),
                0,
                "{v}: policy-built signal-free pool sent signals"
            );
        }
    }
}

#[test]
#[should_panic(expected = "invalid policy bundle")]
fn signal_exposure_over_standard_pop_is_rejected_at_build() {
    let mut p = Policies::signal();
    p.pop_bottom = PopBottomMode::Standard;
    let _pool = PoolBuilder::new(Variant::Signal)
        .policies(p)
        .threads(2)
        .build();
}

#[test]
#[should_panic(expected = "invalid policy bundle")]
fn abp_batch_steals_are_rejected_at_build() {
    let mut p = Policies::ws();
    p.steal = StealAmount::Half;
    let _pool = PoolBuilder::new(Variant::Ws).policies(p).threads(2).build();
}

/// Near-first victim selection is not just a no-op relabelling: a
/// steal-heavy run under it must actually migrate work (steals land) and
/// still execute every task exactly once. The workload is the same skewed
/// tiny-task run the batch test uses, on the Expose Half scheduler whose
/// constant-time wholesale exposure makes steals plentiful — one-at-a-time
/// exposure bundles legitimately steal close to nothing at this task
/// granularity (§3's lost constant-time guarantee), which would make the
/// assertion meaningless there.
#[test]
fn near_first_victims_sustain_a_steal_heavy_run() {
    const TASKS: u64 = 3_000;
    let mut p = Policies::signal_half();
    p.victim = VictimSelection::NearFirst;
    let pool = PoolBuilder::new(Variant::SignalHalf)
        .policies(p)
        .threads(4)
        .build();
    let executed = AtomicU64::new(0);
    let (_, snap) = pool.run_measured(|| {
        scope(|s| {
            for _ in 0..TASKS {
                s.spawn(|| {
                    executed.fetch_add(1, Ordering::Relaxed);
                    busy_for(Duration::from_micros(2));
                });
            }
        });
    });
    assert_eq!(executed.load(Ordering::Relaxed), TASKS);
    assert!(
        snap.steals_ok() > 0,
        "near-first run never stole — victim order broken?"
    );
}

/// The acceptance criterion for the steal-batch axis: on a skewed workload
/// (one worker owns a long run of tiny tasks, Expose Half publishes them
/// wholesale) the batch steal must move more than one task per CAS —
/// i.e. the surplus ledger `steal_batch_tasks` must exceed the number of
/// successful steal CASes. Scheduling noise can flatten any single run, so
/// the claim gets a handful of attempts; each individual run still has to
/// execute every task exactly once.
#[test]
fn expose_half_batches_transfer_more_than_one_task_per_cas() {
    const TASKS: u64 = 3_000;
    let mut best = (0u64, 0u64);
    for _attempt in 0..25 {
        let pool = PoolBuilder::new(Variant::SignalHalf).threads(4).build();
        let executed = AtomicU64::new(0);
        let (_, snap) = pool.run_measured(|| {
            scope(|s| {
                // The root spawns the whole run itself: every task lands in
                // worker 0's deque, so thieves face one deeply skewed victim.
                for _ in 0..TASKS {
                    s.spawn(|| {
                        executed.fetch_add(1, Ordering::Relaxed);
                        busy_for(Duration::from_micros(2));
                    });
                }
            });
        });
        assert_eq!(
            executed.load(Ordering::Relaxed),
            TASKS,
            "skewed batch-steal run lost or duplicated tasks"
        );
        let (batched, steals) = (snap.steal_batch_tasks(), snap.steals_ok());
        if batched > best.0 {
            best = (batched, steals);
        }
        if batched > steals && steals > 0 {
            return;
        }
    }
    panic!(
        "steal-half never beat one-task-per-CAS on the skewed workload: best run \
         moved {} surplus tasks across {} successful steals",
        best.0, best.1
    );
}
