//! Quickstart: build a synchronization-light pool, run fork-join work,
//! use the Parlay-style primitives, and inspect the synchronization
//! profile.
//!
//! Run with: `cargo run --release --example quickstart`

use lcws::{join, par_for, parlay, PoolBuilder, Variant};

fn main() {
    // 1. Pick a scheduler. `Variant::Signal` is the paper's headline
    //    contribution: split deques + SIGUSR1 work-exposure requests
    //    handled in constant time.
    let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
    println!(
        "pool: {:?} workers under the `signal` scheduler",
        pool.num_workers()
    );

    // 2. Fork-join parallelism: same API shape as rayon::join.
    let (sum_a, sum_b) = pool.run(|| {
        join(
            || (0..1_000_000u64).sum::<u64>(),
            || (1_000_000..2_000_000u64).sum::<u64>(),
        )
    });
    println!("parallel sums: {sum_a} + {sum_b} = {}", sum_a + sum_b);

    // 3. Parallel loops.
    let squares = pool.run(|| parlay::tabulate(10, |i| i * i));
    println!("tabulate: {squares:?}");
    pool.run(|| {
        par_for(0..8, |i| {
            // Runs on whichever worker steals (or keeps) each block.
            std::hint::black_box(i);
        })
    });

    // 4. Parallel algorithms from the toolkit.
    let mut data: Vec<u64> = (0..200_000u64).rev().collect();
    pool.run(|| parlay::sort(&mut data));
    assert!(data.windows(2).all(|w| w[0] <= w[1]));
    println!("sorted {} elements", data.len());

    // 5. Every run exposes its synchronization profile — the quantity the
    //    paper's evaluation is about. Compare against the classic WS
    //    scheduler on the same computation:
    let work = |n: u64| {
        move || {
            par_for(0..n as usize, |i| {
                std::hint::black_box(i * i);
            })
        }
    };
    let (_, lcws_profile) = pool.run_measured(work(500_000));
    let ws_pool = PoolBuilder::new(Variant::Ws).threads(4).build();
    let (_, ws_profile) = ws_pool.run_measured(work(500_000));
    println!("\nsynchronization profile (same computation):");
    println!(
        "  signal-LCWS: fences={:<8} cas={:<8}",
        lcws_profile.fences(),
        lcws_profile.cas()
    );
    println!(
        "  classic WS : fences={:<8} cas={:<8}",
        ws_profile.fences(),
        ws_profile.cas()
    );
    println!(
        "  LCWS uses {:.2}% of WS's memory fences",
        100.0 * lcws_profile.fences() as f64 / ws_profile.fences().max(1) as f64
    );
}
