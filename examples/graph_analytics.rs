//! Graph analytics on a power-law (R-MAT) graph: BFS, maximal independent
//! set, maximal matching, and spanning forest — the irregular-parallelism
//! workloads from PBBS, driven by the signal-based LCWS scheduler.
//!
//! Run with: `cargo run --release --example graph_analytics`

use std::time::Instant;

use lcws::pbbs::bench::graphs;
use lcws::pbbs::gen::graphs as gen;
use lcws::{PoolBuilder, Variant};

fn main() {
    let n = 50_000;
    let m = 5 * n;
    println!("generating rMAT graph: {n} vertices, ~{m} edges ...");
    let graph = gen::rmat_graph(n, m, 42);
    println!(
        "graph ready: {} vertices, {} unique undirected edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let pool = PoolBuilder::new(Variant::Signal).threads(4).build();

    // Breadth-first search.
    let t = Instant::now();
    let dist = pool.run(|| graphs::bfs(&graph, 0));
    let reached = dist.iter().filter(|&&d| d != graphs::UNREACHED).count();
    let max_level = dist
        .iter()
        .filter(|&&d| d != graphs::UNREACHED)
        .max()
        .copied()
        .unwrap_or(0);
    println!(
        "BFS        {:>8.2} ms  reached {reached}/{n} vertices, eccentricity {max_level}",
        t.elapsed().as_secs_f64() * 1e3
    );

    // Maximal independent set.
    let t = Instant::now();
    let mis = pool.run(|| graphs::maximal_independent_set(&graph, 1));
    graphs::check_mis(&graph, &mis).expect("MIS invalid");
    println!(
        "MIS        {:>8.2} ms  |S| = {} (verified independent + maximal)",
        t.elapsed().as_secs_f64() * 1e3,
        mis.iter().filter(|&&b| b).count()
    );

    // Maximal matching.
    let t = Instant::now();
    let (matched, k) = pool.run(|| graphs::maximal_matching(&graph, 2));
    graphs::check_matching(&graph, &matched, k).expect("matching invalid");
    println!(
        "matching   {:>8.2} ms  {k} edges matched (verified maximal)",
        t.elapsed().as_secs_f64() * 1e3
    );

    // Spanning forest.
    let t = Instant::now();
    let forest = pool.run(|| graphs::spanning_forest(&graph));
    graphs::check_spanning_forest(&graph, &forest).expect("forest invalid");
    println!(
        "forest     {:>8.2} ms  {} tree edges → {} components",
        t.elapsed().as_secs_f64() * 1e3,
        forest.len(),
        graph.num_vertices() - forest.len()
    );

    // The punchline: how much synchronization did the scheduler itself pay?
    let (_, profile) = pool.run_measured(|| graphs::bfs(&graph, 0));
    println!(
        "\nBFS scheduler profile under signal-LCWS: fences={} cas={} steals={} signals={} exposures={}",
        profile.fences(),
        profile.cas(),
        profile.steals_ok(),
        profile.signals_sent(),
        profile.exposures(),
    );
}
