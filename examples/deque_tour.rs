//! A guided tour of the split deque itself (paper Listing 2 / Figure 1):
//! how work moves between the private and public parts, what each
//! operation costs in synchronization, and how the §4 signal-safety fix
//! behaves. Useful for understanding the scheduler from the data structure
//! up.
//!
//! Run with: `cargo run --release --example deque_tour`

use lcws::metrics::{self, Collector};
use lcws::{ExposurePolicy, PopBottomMode, SplitDeque};

fn job(n: usize) -> *mut lcws::pbbs::registry::RunOutcome {
    // Opaque non-null cookies standing in for task pointers.
    n as *mut _
}

fn show(deque: &SplitDeque, what: &str) {
    println!(
        "  {what:<46} private={} public={}",
        deque.private_len(),
        deque.public_len()
    );
}

fn main() {
    metrics::touch();
    let collector = Collector::new();
    let deque = SplitDeque::new(64);

    println!("1. Owner pushes four tasks — all land in the private part:");
    for i in 1..=4 {
        deque.push_bottom(job(i) as *mut _);
    }
    show(&deque, "after 4 × push_bottom");
    metrics::flush_into(&collector);
    println!("   synchronization so far: {}\n", collector.snapshot());

    println!("2. A thief probes: public part is empty, private is not —");
    println!("   pop_top answers PRIVATE_WORK (the paper's exposure request):");
    println!("   -> {:?}\n", deque.pop_top());

    println!("3. The owner (or its signal handler) exposes work:");
    deque.update_public_bottom(ExposurePolicy::One);
    show(&deque, "after update_public_bottom(One)");
    deque.update_public_bottom(ExposurePolicy::Half);
    show(&deque, "after update_public_bottom(Half) — r=3 → 2 more");
    println!();

    println!("4. Thieves steal from the top (oldest task first), one CAS each:");
    println!("   -> {:?}", deque.pop_top());
    show(&deque, "after one successful steal");
    println!();

    println!("5. Owner pops: private part first (fence-free) ...");
    let t = deque.pop_bottom(PopBottomMode::SignalSafe);
    println!("   -> popped private task {:?}", t.map(|p| p as usize));
    show(&deque, "after pop_bottom");

    println!("   ... then the public part (two seq-cst fences, Listing 2):");
    while let Some(p) = {
        let none = deque.pop_bottom(PopBottomMode::SignalSafe);
        if none.is_none() {
            deque.pop_public_bottom()
        } else {
            none
        }
    } {
        println!("   -> retrieved exposed-but-unstolen task {}", p as usize);
    }
    show(&deque, "after draining");

    metrics::flush_into(&collector);
    let snap = collector.snapshot();
    println!("\nfinal synchronization ledger: {snap}");
    println!(
        "note: {} pushes and {} private pops executed ZERO fences; the {} fences\n\
         all came from pop_public_bottom on the exposed-but-unstolen tasks —\n\
         exactly the Figure 3d effect the paper discusses.",
        snap.get(metrics::Counter::Push),
        snap.get(metrics::Counter::LocalPop),
        snap.fences(),
    );
}
