//! The paper's motivating scenario (§1.1, "Multiprogrammed Environments"):
//! a resource manager has granted our runtime only a *fraction* of the
//! machine's cores. Classic WS keeps paying a memory fence on every local
//! deque pop even though almost nothing is stolen at low worker counts —
//! LCWS makes exactly those fences disappear.
//!
//! This example runs the same computation under every scheduler at
//! decreasing worker counts and prints time + synchronization profile,
//! mirroring Figure 5's axis (fraction of cores used).
//!
//! Run with: `cargo run --release --example multiprogrammed`

use std::time::Instant;

use lcws::{par_for_grain, PoolBuilder, Variant};

fn workload() {
    // A data-parallel kernel with fine-grained tasks: maximal pressure on
    // the deque's local-operation path.
    par_for_grain(0..400_000, 128, |i| {
        std::hint::black_box((i as u64).wrapping_mul(0x9E3779B97F4A7C15));
    });
}

fn main() {
    println!(
        "{:<10} {:>3} {:>10} {:>12} {:>10} {:>9} {:>9}",
        "scheduler", "P", "time(ms)", "fences", "cas", "steals", "signals"
    );
    for &threads in &[4usize, 2, 1] {
        for variant in Variant::ALL {
            let pool = PoolBuilder::new(variant).threads(threads).build();
            // Warmup, then measure.
            pool.run(workload);
            let t = Instant::now();
            let (_, profile) = pool.run_measured(workload);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            println!(
                "{:<10} {:>3} {:>10.2} {:>12} {:>10} {:>9} {:>9}",
                variant.name(),
                threads,
                ms,
                profile.fences(),
                profile.cas(),
                profile.steals_ok(),
                profile.signals_sent(),
            );
        }
        println!();
    }
    println!(
        "Note the fences column: the LCWS variants eliminate the per-pop\n\
         seq-cst fence WS pays, which is the whole effect the paper measures\n\
         — most visible at P=1/P=2 where stealing is rare but classic WS\n\
         still synchronizes every local operation."
    );
}
