//! Sorting showcase: parallel comparison sort and radix integer sort on
//! the PBBS input families, with a scheduler comparison.
//!
//! Run with: `cargo run --release --example parallel_sort`

use std::time::Instant;

use lcws::parlay;
use lcws::pbbs::gen::seqs;
use lcws::{PoolBuilder, ThreadPool, Variant};

fn time_sort<T, F: FnOnce() -> T>(label: &str, f: F) -> T {
    let t = Instant::now();
    let out = f();
    println!("  {label:<34} {:>9.2} ms", t.elapsed().as_secs_f64() * 1e3);
    out
}

fn main() {
    let n = 400_000;
    let pool: ThreadPool = PoolBuilder::new(Variant::Signal).threads(4).build();
    println!(
        "sorting {n} elements on {} workers (signal-LCWS):",
        pool.num_workers()
    );

    // Integer sort on the PBBS integer families.
    for (name, mut data) in [
        (
            "integerSort/randomSeq_int",
            seqs::random_seq(n, u64::MAX, 1),
        ),
        ("integerSort/exptSeq_int", seqs::expt_seq(n, 1 << 30, 2)),
        ("integerSort/almostSortedSeq", seqs::almost_sorted_seq(n, 3)),
    ] {
        pool.run(|| time_sort(name, || parlay::integer_sort(&mut data)));
        assert!(data.windows(2).all(|w| w[0] <= w[1]), "{name} not sorted");
    }

    // Comparison sort on doubles and strings.
    let mut doubles = seqs::random_f64_seq(n, 4);
    pool.run(|| {
        time_sort("comparisonSort/randomSeq_double", || {
            parlay::sort_by(&mut doubles, |a, b| a.total_cmp(b))
        })
    });
    assert!(doubles.windows(2).all(|w| w[0] <= w[1]));

    let mut words = lcws::pbbs::gen::text::trigram_words(n / 4, 5);
    pool.run(|| {
        time_sort("comparisonSort/trigramSeq_string", || {
            parlay::sort(&mut words)
        })
    });
    assert!(words.windows(2).all(|w| w[0] <= w[1]));

    // Scheduler shoot-out on one input.
    println!("\nscheduler comparison (integer sort, P=2):");
    for variant in Variant::ALL {
        let p = PoolBuilder::new(variant).threads(2).build();
        let mut data = seqs::random_seq(n, u64::MAX, 6);
        p.run(|| parlay::integer_sort(&mut data)); // warmup on a copy
        let mut data = seqs::random_seq(n, u64::MAX, 6);
        let t = Instant::now();
        let (_, profile) = p.run_measured(|| parlay::integer_sort(&mut data));
        println!(
            "  {:<8} {:>9.2} ms   fences={:<9} cas={:<7}",
            variant.name(),
            t.elapsed().as_secs_f64() * 1e3,
            profile.fences(),
            profile.cas(),
        );
    }
}
