//! Text processing pipeline: word counting, inverted-index construction,
//! and longest-repeated-substring over generated trigram text — the PBBS
//! string workloads on a synchronization-light scheduler.
//!
//! Run with: `cargo run --release --example text_index`

use std::time::Instant;

use lcws::pbbs::bench::{strings, text_ops};
use lcws::pbbs::gen::text;
use lcws::{PoolBuilder, Variant};

fn main() {
    let pool = PoolBuilder::new(Variant::SignalHalf).threads(4).build();

    // --- wordCounts -------------------------------------------------------
    let words = text::trigram_words(150_000, 7);
    let t = Instant::now();
    let counts = pool.run(|| text_ops::word_counts(&words));
    let elapsed = t.elapsed();
    let mut top: Vec<_> = counts.iter().collect();
    top.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    println!(
        "wordCounts: {} words → {} distinct in {:.2} ms",
        words.len(),
        counts.len(),
        elapsed.as_secs_f64() * 1e3
    );
    println!("  top words: {:?}", &top[..top.len().min(5)]);

    // --- invertedIndex ----------------------------------------------------
    let docs = text::documents(1_500, 80, 9);
    let t = Instant::now();
    let index = pool.run(|| text_ops::inverted_index(&docs));
    let elapsed = t.elapsed();
    let postings: usize = index.iter().map(|(_, d)| d.len()).sum();
    println!(
        "invertedIndex: {} documents → {} terms, {} postings in {:.2} ms",
        docs.len(),
        index.len(),
        postings,
        elapsed.as_secs_f64() * 1e3
    );
    // Query the index: documents containing the most common term.
    if let Some((term, ds)) = index.iter().max_by_key(|(_, d)| d.len()) {
        println!(
            "  most widespread term {term:?} appears in {} documents",
            ds.len()
        );
    }

    // --- suffix array & longest repeated substring ------------------------
    let textbuf = text::trigram_string(120_000, 11);
    let t = Instant::now();
    let sa = pool.run(|| strings::suffix_array(&textbuf));
    println!(
        "suffixArray: {} chars in {:.2} ms (sa[0] = {})",
        textbuf.len(),
        t.elapsed().as_secs_f64() * 1e3,
        sa[0]
    );
    let t = Instant::now();
    let (len, start) = pool.run(|| strings::longest_repeated_substring(&textbuf));
    println!(
        "longestRepeatedSubstring: {:?} (len {len}) in {:.2} ms",
        String::from_utf8_lossy(&textbuf[start as usize..(start + len.min(40)) as usize]),
        t.elapsed().as_secs_f64() * 1e3
    );
}
